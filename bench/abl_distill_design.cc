/**
 * @file
 * Ablation study of the distill cache's design choices (not a paper
 * figure; DESIGN.md section 4): WOC way-count sweep, fixed
 * distillation thresholds K = 1..8 vs the adaptive median threshold,
 * and leader-set count sensitivity of the reverter. Run on a
 * representative subset of proxies.
 */

#include <cstdio>
#include <vector>

#include "cache/hierarchy.hh"
#include "common/table.hh"
#include "distill/distill_cache.hh"
#include "sim/replay.hh"
#include "sim/runner.hh"
#include "sim/telemetry.hh"

using namespace ldis;

namespace
{

/** A gang lane running a custom-DistillParams cache. */
GangJob
lane(const std::string &name, const DistillParams &p)
{
    return {name + "/custom-distill",
            [p](const ValueProfile &) {
                L2Instance inst;
                inst.cache = std::make_unique<DistillCache>(p);
                return inst;
            },
            {}};
}

const char *kBenchmarks[] = {"art", "mcf", "twolf", "sixtrack",
                             "swim"};

} // namespace

int
main()
{
    telemetry::setExperiment("abl_distill_design");
    InstCount instructions = runLength(20'000'000);
    std::printf("Ablation: distill-cache design choices "
                "(%llu instructions)\n\n",
                static_cast<unsigned long long>(instructions));

    // Submit every section's jobs to one matrix (per benchmark: one
    // gang group — the shared baseline, then the section variants in
    // order), run once in parallel, and consume in the same order.
    RunMatrix matrix;
    std::vector<std::size_t> base_idx;
    for (const char *name : kBenchmarks) {
        std::vector<GangJob> jobs;
        jobs.push_back(
            makeGangJob(name, ConfigKind::Baseline1MB));
        // A. WOC way-count sweep.
        for (unsigned woc = 1; woc <= 4; ++woc) {
            DistillParams p;
            p.wocWays = woc;
            p.medianThreshold = true;
            p.useReverter = true;
            jobs.push_back(lane(name, p));
        }
        // B. Fixed thresholds, then the adaptive median.
        for (unsigned k : {1u, 2u, 4u, 8u}) {
            DistillParams pk;
            pk.medianThreshold = true;
            pk.fixedThreshold = k;
            jobs.push_back(lane(name, pk));
        }
        DistillParams pm;
        pm.medianThreshold = true;
        jobs.push_back(lane(name, pm));
        // B2. WOC victim selection (footnote 4).
        for (WocVictim policy :
             {WocVictim::Random, WocVictim::RoundRobin}) {
            DistillParams p;
            p.medianThreshold = true;
            p.useReverter = true;
            p.wocVictim = policy;
            jobs.push_back(lane(name, p));
        }
        // C. Reverter leader-set count.
        for (unsigned leaders : {8u, 16u, 32u, 64u, 128u}) {
            DistillParams p;
            p.medianThreshold = true;
            p.useReverter = true;
            p.reverter.leaderSets = leaders;
            jobs.push_back(lane(name, p));
        }
        base_idx.push_back(matrix.addReplayGroup(
            name, instructions, std::move(jobs)));
    }
    const std::vector<RunResult> &results = matrix.run();

    // Per-benchmark consumption order mirrors the submission order.
    const std::size_t kPerBench = 1 + 4 + 5 + 2 + 5;
    auto reduction_cell = [&](std::size_t bench, std::size_t job) {
        double base = results[base_idx[bench]].mpki;
        double v =
            results[bench * kPerBench + 1 + job].mpki;
        return Table::num(percentReduction(base, v), 1) + "%";
    };

    // --- WOC way-count sweep -------------------------------------
    std::printf("A. %% MPKI reduction vs baseline, by WOC ways "
                "(MT+RC):\n\n");
    Table t1({"name", "base MPKI", "1 way", "2 ways", "3 ways",
              "4 ways"});
    for (std::size_t b = 0; b < std::size(kBenchmarks); ++b) {
        std::vector<std::string> row{
            kBenchmarks[b],
            Table::num(results[base_idx[b]].mpki, 2)};
        for (std::size_t j = 0; j < 4; ++j)
            row.push_back(reduction_cell(b, j));
        t1.addRow(row);
    }
    std::printf("%s\n", t1.render().c_str());

    // --- Fixed threshold vs adaptive median ----------------------
    std::printf("B. %% MPKI reduction with fixed distillation "
                "thresholds (no RC), vs the adaptive median:\n\n");
    Table t2({"name", "K=1", "K=2", "K=4", "K=8", "median"});
    for (std::size_t b = 0; b < std::size(kBenchmarks); ++b) {
        std::vector<std::string> row{kBenchmarks[b]};
        for (std::size_t j = 4; j < 9; ++j)
            row.push_back(reduction_cell(b, j));
        t2.addRow(row);
    }
    std::printf("%s\n", t2.render().c_str());

    // --- WOC victim selection (footnote 4) ------------------------
    std::printf("B2. %% MPKI reduction by WOC victim policy "
                "(MT+RC) -- the paper claims random ~ LRU:\n\n");
    Table t2b({"name", "random", "round-robin"});
    for (std::size_t b = 0; b < std::size(kBenchmarks); ++b) {
        std::vector<std::string> row{kBenchmarks[b]};
        for (std::size_t j = 9; j < 11; ++j)
            row.push_back(reduction_cell(b, j));
        t2b.addRow(row);
    }
    std::printf("%s\n", t2b.render().c_str());

    // --- Leader-set count ----------------------------------------
    std::printf("C. %% MPKI reduction (MT+RC) by reverter leader-set "
                "count:\n\n");
    Table t3({"name", "8 leaders", "16", "32", "64", "128"});
    for (std::size_t b = 0; b < std::size(kBenchmarks); ++b) {
        std::vector<std::string> row{kBenchmarks[b]};
        for (std::size_t j = 11; j < 16; ++j)
            row.push_back(reduction_cell(b, j));
        t3.addRow(row);
    }
    std::printf("%s\n", t3.render().c_str());
    std::printf("%s", matrix.summary().c_str());
    return 0;
}
