/**
 * @file
 * Reproduces Figure 10: compressibility of the baseline cache's
 * lines under the Table-4 encoding, sampled every 10M instructions —
 * (a) compressing whole lines, (b) compressing only the used words.
 * The paper's point: whole-line compressibility is limited (mostly
 * the one-half class), but once unused words are filtered the
 * majority of lines compress to a quarter or an eighth for the
 * low-spatial-locality benchmarks.
 */

#include <cstdio>

#include "cache/hierarchy.hh"
#include "cache/traditional_l2.hh"
#include "common/table.hh"
#include "compression/compressibility.hh"
#include "sim/experiment.hh"

using namespace ldis;

namespace
{

void
addRow(Table &t, const std::string &name,
       const CompressDistribution &d)
{
    t.addRow({name,
              Table::percent(d.fraction(CompressClass::OneEighth)),
              Table::percent(d.fraction(CompressClass::OneFourth)),
              Table::percent(d.fraction(CompressClass::OneHalf)),
              Table::percent(d.fraction(CompressClass::Full))});
}

} // namespace

int
main()
{
    InstCount instructions = runLength();
    const InstCount sample_period = 10'000'000;
    std::printf("Figure 10: line compressibility, sampled every "
                "10M instructions (%llu instructions total)\n\n",
                static_cast<unsigned long long>(instructions));

    Table ta({"name", "1/8", "1/4", "1/2", "full"});
    Table tb = ta;
    for (const std::string &name : studiedBenchmarks()) {
        auto workload = makeBenchmark(name);
        ValueModel values(workload->valueProfile());
        CacheGeometry g;
        g.bytes = 1 << 20;
        g.ways = 8;
        TraditionalL2 l2(g);
        Hierarchy hier(*workload, l2);
        CompressibilitySampler sampler(values);

        InstCount done = 0;
        while (done < instructions) {
            InstCount step =
                std::min<InstCount>(sample_period,
                                    instructions - done);
            hier.run(step);
            done += step;
            sampler.sample(l2.tags());
        }
        addRow(ta, name, sampler.wholeLine());
        addRow(tb, name, sampler.usedWords());
    }

    std::printf("(a) all words considered for compression\n%s\n",
                ta.render().c_str());
    std::printf("(b) only used words compressed "
                "(footprint-aware)\n%s\n",
                tb.render().c_str());
    std::printf("Paper: (a) <half the lines compressible for 10/16 "
                "benchmarks; (b) art, mcf, twolf, vpr, vortex, "
                "health have >50%% of lines in the 1/4 or 1/8 "
                "classes.\n");
    return 0;
}
