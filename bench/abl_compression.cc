/**
 * @file
 * Footnote-9 ablation: "We also studied more complex compression
 * schemes [FPC] but the compression ratio and the reduction in MPKI
 * were similar." Compares the Table-4 encoding against Frequent
 * Pattern Compression for both CMPR-4xTags and FAC-4xTags.
 */

#include <cstdio>

#include "cache/hierarchy.hh"
#include "common/table.hh"
#include "compression/compressed_l2.hh"
#include "compression/fac_cache.hh"
#include "sim/experiment.hh"

using namespace ldis;

namespace
{

double
cmprMpki(const std::string &name, EncoderKind enc, InstCount n)
{
    auto workload = makeBenchmark(name);
    ValueModel values(workload->valueProfile());
    CompressedL2Params p;
    p.encoder = enc;
    CompressedL2 l2(p, values);
    return runTrace(*workload, l2, n).mpki;
}

double
facMpki(const std::string &name, EncoderKind enc, InstCount n)
{
    auto workload = makeBenchmark(name);
    ValueModel values(workload->valueProfile());
    DistillParams p;
    p.wocWays = 3;
    p.medianThreshold = true;
    p.useReverter = true;
    FacCache l2(p, values, enc);
    return runTrace(*workload, l2, n).mpki;
}

const char *kBenchmarks[] = {"mcf", "twolf", "parser", "sixtrack",
                             "health", "gcc"};

} // namespace

int
main()
{
    InstCount instructions = runLength(20'000'000);
    std::printf("Ablation: Table-4 encoding vs FPC (footnote 9) "
                "(%llu instructions)\n\n",
                static_cast<unsigned long long>(instructions));

    Table t({"name", "base MPKI", "CMPR/T4", "CMPR/FPC", "FAC/T4",
             "FAC/FPC"});
    for (const char *name : kBenchmarks) {
        RunResult base = runTrace(name, ConfigKind::Baseline1MB,
                                  instructions);
        auto pct = [&](double mpki) {
            return Table::num(percentReduction(base.mpki, mpki), 1)
                 + "%";
        };
        t.addRow({name, Table::num(base.mpki, 2),
                  pct(cmprMpki(name, EncoderKind::Table4,
                               instructions)),
                  pct(cmprMpki(name, EncoderKind::Fpc,
                               instructions)),
                  pct(facMpki(name, EncoderKind::Table4,
                              instructions)),
                  pct(facMpki(name, EncoderKind::Fpc,
                              instructions))});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Paper footnote 9: the richer encoding changes "
                "neither the compression ratio nor the MPKI "
                "reduction materially.\n");
    return 0;
}
