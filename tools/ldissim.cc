/**
 * @file
 * The `ldissim` command-line driver: run any benchmark proxy against
 * any cache configuration, trace- or execution-driven, with control
 * over run length, seed, prefetching, and distill parameters, and
 * print a full statistics report.
 *
 *   ldissim --benchmark mcf --config ldis-mt-rc
 *   ldissim --benchmark art --config baseline --ipc
 *   ldissim --benchmark swim --config ldis --woc-ways 3 --no-mt
 *   ldissim --mix art+mcf --config ldis-mt-rc
 *   ldissim --list
 */

#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cache/hierarchy.hh"
#include "cache/prefetch.hh"
#include "common/args.hh"
#include "common/audit.hh"
#include "common/json.hh"
#include "common/table.hh"
#include "common/workshare.hh"
#include "distill/distill_cache.hh"
#include "sim/experiment.hh"
#include "sim/mix.hh"
#include "sim/replay.hh"
#include "sim/telemetry.hh"

using namespace ldis;

namespace
{

struct CliConfig
{
    std::string benchmark = "mcf";
    std::string config = "ldis-mt-rc";
    InstCount instructions = 50'000'000;
    std::uint64_t seed = 1;
    unsigned wocWays = 2;
    bool mt = true;
    bool rc = true;
    unsigned prefetchDegree = 0;
    bool ipc = false;
};

/** Map a --config name to a ConfigKind (or "custom" distill). */
bool
kindFor(const std::string &name, ConfigKind &out)
{
    static const std::pair<const char *, ConfigKind> table[] = {
        {"baseline", ConfigKind::Baseline1MB},
        {"trad-1.5mb", ConfigKind::Trad1_5MB},
        {"trad-2mb", ConfigKind::Trad2MB},
        {"trad-4mb", ConfigKind::Trad4MB},
        {"trad-32b", ConfigKind::Trad1MB32B},
        {"ldis-base", ConfigKind::LdisBase},
        {"ldis-mt", ConfigKind::LdisMT},
        {"ldis-mt-rc", ConfigKind::LdisMTRC},
        {"ldis-4xtags", ConfigKind::Ldis4xTags},
        {"cmpr", ConfigKind::Cmpr4xTags},
        {"fac", ConfigKind::Fac4xTags},
        {"sfp-16k", ConfigKind::Sfp16k},
        {"sfp-64k", ConfigKind::Sfp64k},
    };
    for (const auto &[key, kind] : table) {
        if (name == key) {
            out = kind;
            return true;
        }
    }
    return false;
}

L2Instance
buildL2(const CliConfig &cli, const ValueProfile &profile)
{
    L2Instance inst;
    if (cli.config == "ldis") {
        // Fully custom distill configuration.
        DistillParams p;
        p.wocWays = cli.wocWays;
        p.medianThreshold = cli.mt;
        p.useReverter = cli.rc;
        inst.cache = std::make_unique<DistillCache>(p);
    } else {
        ConfigKind kind;
        if (!kindFor(cli.config, kind))
            ldis_fatal("unknown --config '%s' (try --help)",
                       cli.config.c_str());
        inst = makeConfig(kind, profile);
    }
    if (cli.prefetchDegree > 0) {
        inst.cache = std::make_unique<PrefetchingL2>(
            std::move(inst.cache), cli.prefetchDegree);
    }
    return inst;
}

void
printJsonReport(const RunResult &r)
{
    JsonWriter j;
    writeJson(j, r);
    std::printf("%s\n", j.str().c_str());
}

void
printTraceReport(const RunResult &r, SecondLevelCache &l2)
{
    std::printf("benchmark     %s\n", r.benchmark.c_str());
    std::printf("config        %s\n", l2.describe().c_str());
    std::printf("instructions  %llu\n",
                static_cast<unsigned long long>(r.instructions));
    std::printf("MPKI          %.3f\n", r.mpki);
    std::printf("sim speed     %.2f Minst/s (%.2f s wall)\n\n",
                r.instPerSec / 1e6, r.wallSeconds);

    Table t({"counter", "value"});
    auto row = [&t](const char *k, std::uint64_t v) {
        t.addRow({k, std::to_string(v)});
    };
    row("L2 accesses", r.l2.accesses);
    row("LOC hits", r.l2.locHits);
    row("WOC hits", r.l2.wocHits);
    row("hole misses", r.l2.holeMisses);
    row("line misses", r.l2.lineMisses);
    row("compulsory misses", r.l2.compulsoryMisses);
    row("writebacks", r.l2.writebacks);
    row("L1D accesses", r.l1d.accesses);
    row("L1D sector misses", r.l1d.sectorMisses);
    row("L1D line misses", r.l1d.lineMisses);
    row("L1I misses", r.l1i.misses);
    std::printf("%s", t.render().c_str());
}

void
printMixReport(const RunResult &r, SecondLevelCache &l2)
{
    printTraceReport(r, l2);
    Table t({"stream", "instructions", "solo MPKI", "mix MPKI",
             "speedup"});
    for (const StreamStat &s : r.streams) {
        t.addRow({s.benchmark,
                  std::to_string(
                      static_cast<unsigned long long>(
                          s.instructions)),
                  Table::num(s.soloMpki, 3), Table::num(s.mpki, 3),
                  Table::num(cpiProxy(s.soloMpki) / cpiProxy(s.mpki),
                             3)});
    }
    std::printf("\n%s", t.render().c_str());
    std::printf("weighted speedup  %.3f\n", r.weightedSpeedup);
    std::printf("fairness          %.3f\n", r.fairness);
}

/**
 * Shared-L2 mix run: record each distinct member's solo stream once
 * (honoring LDIS_TRACE_CACHE), compose the merged stream, replay it
 * against the requested config behind a per-stream attribution
 * wrapper, and derive the mix metrics from same-config solo replays
 * of the member streams.
 */
int
runMixCli(const CliConfig &cli, const std::string &mix_name,
          InstCount quantum, bool gang, bool json)
{
    std::vector<std::string> members;
    if (const MixSpec *spec = findMix(mix_name)) {
        members = spec->members;
    } else {
        std::string cur;
        for (char c : mix_name) {
            if (c == '+') {
                members.push_back(cur);
                cur.clear();
            } else {
                cur += c;
            }
        }
        members.push_back(cur);
    }
    if (members.size() < 2 || members.size() > kMaxMixStreams)
        ldis_fatal("--mix wants a mix name from configs.cc or 2..%u "
                   "'+'-joined benchmarks, got '%s'",
                   static_cast<unsigned>(kMaxMixStreams),
                   mix_name.c_str());
    for (const std::string &m : members)
        if (m.empty())
            ldis_fatal("--mix '%s' has an empty member",
                       mix_name.c_str());

    // One recording per distinct member feeds both the composition
    // (possibly several slots, for two-copies mixes) and its solo
    // baseline.
    std::map<std::string, std::shared_ptr<const L2Stream>> recorded;
    bool all_cached = true;
    for (const std::string &m : members) {
        if (recorded.count(m))
            continue;
        StreamLoadInfo info;
        recorded[m] = loadOrRecordStream(m, cli.seed, 0,
                                         cli.instructions, {}, &info);
        all_cached = all_cached && info.fromDiskCache;
    }
    std::vector<std::shared_ptr<const L2Stream>> streams;
    for (const std::string &m : members)
        streams.push_back(recorded.at(m));
    auto merged = composeMixStream(mix_name, streams, quantum);

    L2Instance l2 = buildL2(cli, merged->values);
    StreamAttributingL2 attrib(*l2.cache);
    RunResult r;
    if (gang) {
        unsigned lanes = gangLanes();
        WorkerLeaseHub hub(lanes ? lanes : 1);
        hub.setBusyWorkers(1);
        GangParallel par;
        par.hub = &hub;
        r = replayMany(*merged, {&attrib}, nullptr, par)[0];
    } else {
        r = replayStream(*merged, attrib);
    }
    r.streamSource = all_cached ? "disk-cache" : "record";
    std::vector<MixMemberInfo> info;
    for (const auto &s : streams)
        info.push_back({s->benchmark, s->meas.instructions});
    attachStreamStats(r, attrib, info);

    // Solo baselines: each distinct member against a fresh L2 of the
    // same configuration.
    std::map<std::string, double> solo_mpki;
    for (const auto &[name, stream] : recorded) {
        L2Instance solo_l2 = buildL2(cli, stream->values);
        solo_mpki[name] = replayStream(*stream, *solo_l2.cache).mpki;
    }
    std::vector<double> solo;
    for (const std::string &m : members)
        solo.push_back(solo_mpki.at(m));
    finalizeMixMetrics(r, solo);

    telemetry::emitJob(mix_name + "/" + cli.config, r);
    if (json)
        printJsonReport(r);
    else
        printMixReport(r, attrib);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args;
    args.addOption("benchmark", "proxy name (see --list)", "mcf");
    args.addOption("config",
                   "baseline | trad-1.5mb | trad-2mb | trad-4mb | "
                   "trad-32b | ldis-base | ldis-mt | ldis-mt-rc | "
                   "ldis-4xtags | cmpr | fac | sfp-16k | sfp-64k | "
                   "ldis (custom)",
                   "ldis-mt-rc");
    args.addOption("instructions", "run length", "50000000");
    args.addOption("seed", "workload seed", "1");
    args.addOption("woc-ways", "WOC ways for --config ldis", "2");
    args.addFlag("no-mt", "disable median-threshold (ldis)");
    args.addFlag("no-rc", "disable the reverter (ldis)");
    args.addOption("prefetch", "next-N-line prefetch degree", "0");
    args.addOption("mix",
                   "shared-L2 multi-programmed run: a mix name from "
                   "configs.cc or 2..4 '+'-joined benchmarks "
                   "(e.g. art+mcf); --instructions is per member",
                   "");
    args.addOption("quantum",
                   "with --mix: retired instructions per "
                   "round-robin turn",
                   "100000");
    args.addFlag("ipc", "execution-driven run (reports IPC)");
    args.addFlag("replay",
                 "drive the L2 from a recorded front-end stream "
                 "(bit-identical stats; honors LDIS_TRACE_CACHE)");
    args.addFlag("gang",
                 "with --replay: use the gang walk engine "
                 "(replayMany; overrides LDIS_GANG=0)");
    args.addFlag("no-gang",
                 "with --replay: per-config walk engine "
                 "(overrides LDIS_GANG=1)");
    args.addOption("lanes",
                   "with --replay --gang: thread budget of the "
                   "walk, 1..4096 (1 = serial; overrides "
                   "LDIS_LANES)",
                   "");
    args.addFlag("json", "emit the report as a JSON object");
    args.addOption("metrics",
                   "append one telemetry record per run to this "
                   "JSONL file (same format as LDIS_METRICS)",
                   "");
    args.addFlag("audit",
                 "run invariant audits during the simulation "
                 "(needs an LDIS_AUDIT=ON build)");
    args.addOption("audit-interval",
                   "accesses between full-state audits", "4096");
    args.addFlag("list", "list benchmark proxies and exit");
    args.addFlag("help", "show this help");

    if (!args.parse(argc, argv) || args.has("help")) {
        std::fprintf(stderr, "%s%s",
                     args.ok() ? "" : (args.error() + "\n").c_str(),
                     args.usage("ldissim").c_str());
        return args.ok() ? 0 : 1;
    }
    if (args.has("list")) {
        std::printf("studied benchmarks:\n");
        for (const std::string &n : studiedBenchmarks())
            std::printf("  %s\n", n.c_str());
        std::printf("cache-insensitive benchmarks:\n");
        for (const std::string &n : insensitiveBenchmarks())
            std::printf("  %s\n", n.c_str());
        return 0;
    }

    CliConfig cli;
    cli.benchmark = args.get("benchmark");
    cli.config = args.get("config");
    cli.instructions = args.getUint("instructions");
    cli.seed = args.getUint("seed");
    cli.wocWays = static_cast<unsigned>(args.getUint("woc-ways"));
    cli.mt = !args.has("no-mt");
    cli.rc = !args.has("no-rc");
    cli.prefetchDegree =
        static_cast<unsigned>(args.getUint("prefetch"));
    cli.ipc = args.has("ipc");
    std::uint64_t quantum = args.getUintInRange(
        "quantum", 1, 1'000'000'000ULL);
    std::uint64_t audit_interval = args.getUint("audit-interval");
    std::uint64_t lanes_flag = 0;
    if (args.has("lanes"))
        lanes_flag = args.getUintInRange("lanes", 1, 4096);
    // Fail fast on any malformed numeric option before acting on
    // partially-parsed state (setting the audit interval, building
    // the workload, opening the metrics log).
    if (!args.ok()) {
        std::fprintf(stderr, "%s\n", args.error().c_str());
        return 1;
    }
    if (args.has("gang") && args.has("no-gang")) {
        std::fprintf(stderr, "ldissim: --gang and --no-gang are "
                             "mutually exclusive\n");
        return 1;
    }
    // Flag beats environment beats the default (gang on).
    bool gang = args.has("gang") ||
                (!args.has("no-gang") && gangEnabled());
    // Same precedence for the walk's thread budget: --lanes beats
    // LDIS_LANES beats the default (auto).
    if (lanes_flag)
        setGangLanes(static_cast<unsigned>(lanes_flag));
    if (args.has("audit")) {
        if (!audit::compiledIn())
            std::fprintf(stderr,
                         "ldissim: warning: --audit ignored (this "
                         "build has LDIS_AUDIT=OFF)\n");
        audit::setEnabled(true);
        audit::setInterval(audit_interval);
    }
    if (args.has("metrics"))
        telemetry::setSink(args.get("metrics"));
    telemetry::setExperiment("ldissim");

    if (args.has("mix")) {
        if (cli.ipc) {
            std::fprintf(stderr, "ldissim: --mix is trace-driven; "
                                 "--ipc is not supported\n");
            return 1;
        }
        // Mix runs are always stream-composed, so --replay is
        // implied; the gang/no-gang choice still applies.
        return runMixCli(cli, args.get("mix"), quantum, gang,
                         args.has("json"));
    }

    auto workload = makeBenchmark(cli.benchmark, cli.seed);
    L2Instance l2 = buildL2(cli, workload->valueProfile());

    if (cli.ipc) {
        CpuParams params;
        OooCore core(params, *workload, *l2.cache);
        auto begin = std::chrono::steady_clock::now();
        core.run(cli.instructions);
        double wall =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - begin)
                .count();
        IpcResult ipc_result;
        ipc_result.benchmark = cli.benchmark;
        ipc_result.config = l2.cache->describe();
        ipc_result.ipc = core.ipc();
        ipc_result.mpki = core.mpki();
        ipc_result.cpu = core.stats();
        ipc_result.branch = core.branchStats();
        ipc_result.wallSeconds = wall;
        ipc_result.instPerSec =
            wall > 0.0 ? static_cast<double>(
                             core.stats().instructions) /
                             wall
                       : 0.0;
        telemetry::emitJob(cli.benchmark + "/" + cli.config,
                           ipc_result);
        std::printf("benchmark     %s\n", cli.benchmark.c_str());
        std::printf("config        %s\n",
                    l2.cache->describe().c_str());
        std::printf("instructions  %llu\n",
                    static_cast<unsigned long long>(
                        core.stats().instructions));
        std::printf("cycles        %llu\n",
                    static_cast<unsigned long long>(
                        core.stats().cycles));
        std::printf("IPC           %.4f\n", core.ipc());
        std::printf("MPKI          %.3f\n", core.mpki());
        std::printf("bpred miss    %.2f%%\n",
                    core.branchStats().missRate() * 100.0);
        std::printf("mem latency   %.1f cycles avg\n",
                    core.memoryStats().avgLatency());
        return 0;
    }

    RunResult r;
    if (args.has("replay")) {
        StreamLoadInfo info;
        auto stream = loadOrRecordStream(cli.benchmark, cli.seed, 0,
                                         cli.instructions, {},
                                         &info);
        if (gang) {
            // Standalone walk: the tool itself is the one "busy
            // worker"; LDIS_LANES / --lanes beyond 1 buys a decode
            // pipeline helper for the single lane.
            unsigned lanes = gangLanes();
            WorkerLeaseHub hub(lanes ? lanes : 1);
            hub.setBusyWorkers(1);
            GangParallel par;
            par.hub = &hub;
            r = replayMany(*stream, {l2.cache.get()}, nullptr,
                           par)[0];
        } else {
            r = replayStream(*stream, *l2.cache);
        }
        r.streamSource = info.fromDiskCache ? "disk-cache"
                                            : "record";
    } else {
        r = runTrace(*workload, *l2.cache, cli.instructions);
    }
    telemetry::emitJob(cli.benchmark + "/" + cli.config, r);
    if (args.has("json"))
        printJsonReport(r);
    else
        printTraceReport(r, *l2.cache);
    return 0;
}
