/**
 * @file
 * The `ldistrace` tool: record a benchmark proxy's access stream to
 * a trace file, inspect a trace, or replay one against a cache
 * configuration.
 *
 *   ldistrace --record --benchmark mcf --accesses 1000000 \
 *       --out mcf.ldt
 *   ldistrace --info mcf.ldt
 *   ldistrace --replay mcf.ldt --config ldis-mt-rc \
 *       --instructions 10000000
 */

#include <cstdio>
#include <string>

#include "common/args.hh"
#include "sim/experiment.hh"
#include "trace/trace_file.hh"

using namespace ldis;

int
main(int argc, char **argv)
{
    ArgParser args;
    args.addFlag("record", "record a proxy's stream to --out");
    args.addOption("info", "print a trace file's summary");
    args.addOption("replay", "replay a trace against --config");
    args.addOption("benchmark", "proxy to record", "mcf");
    args.addOption("accesses", "records to capture", "1000000");
    args.addOption("out", "output trace path", "trace.ldt");
    args.addOption("seed", "workload seed for recording", "1");
    args.addOption("config",
                   "cache configuration for --replay (same names "
                   "as ldissim)",
                   "ldis-mt-rc");
    args.addOption("instructions", "replay run length", "10000000");
    args.addFlag("help", "show this help");

    if (!args.parse(argc, argv) || args.has("help") ||
        (!args.has("record") && !args.has("info") &&
         !args.has("replay"))) {
        std::fprintf(stderr, "%s%s",
                     args.ok() ? "" : (args.error() + "\n").c_str(),
                     args.usage("ldistrace").c_str());
        return args.ok() && args.has("help") ? 0 : 1;
    }

    if (args.has("record")) {
        // Validate every numeric option before building the
        // workload or touching the output file.
        std::uint64_t seed = args.getUint("seed");
        std::uint64_t n = args.getUint("accesses");
        if (!args.ok()) {
            std::fprintf(stderr, "%s\n", args.error().c_str());
            return 1;
        }
        auto workload = makeBenchmark(args.get("benchmark"), seed);
        recordTrace(*workload, args.get("out"), n);
        std::printf("recorded %llu accesses of %s to %s\n",
                    static_cast<unsigned long long>(n),
                    workload->name().c_str(),
                    args.get("out").c_str());
        return 0;
    }

    if (args.has("info")) {
        TraceInfo info = traceInfo(args.get("info"));
        std::printf("trace         %s\n", args.get("info").c_str());
        std::printf("workload      %s\n", info.name.c_str());
        std::printf("records       %llu\n",
                    static_cast<unsigned long long>(info.records));
        std::printf("instructions  %llu\n",
                    static_cast<unsigned long long>(
                        info.instructions));
        std::printf("code          %llu B footprint, %u-instr runs\n",
                    static_cast<unsigned long long>(
                        info.code.codeBytes),
                    info.code.avgRunInstrs);
        std::printf("values        pZero=%.2f pOne=%.2f "
                    "pNarrow=%.2f\n",
                    info.values.pZero, info.values.pOne,
                    info.values.pNarrow);
        return 0;
    }

    // --replay
    std::uint64_t replay_instructions =
        args.getUint("instructions");
    if (!args.ok()) {
        std::fprintf(stderr, "%s\n", args.error().c_str());
        return 1;
    }
    FileWorkload workload(args.get("replay"));
    ConfigKind kind = ConfigKind::LdisMTRC;
    const std::string cfg = args.get("config");
    const std::pair<const char *, ConfigKind> table[] = {
        {"baseline", ConfigKind::Baseline1MB},
        {"trad-2mb", ConfigKind::Trad2MB},
        {"ldis-base", ConfigKind::LdisBase},
        {"ldis-mt", ConfigKind::LdisMT},
        {"ldis-mt-rc", ConfigKind::LdisMTRC},
        {"cmpr", ConfigKind::Cmpr4xTags},
        {"fac", ConfigKind::Fac4xTags},
        {"sfp-16k", ConfigKind::Sfp16k},
    };
    bool found = false;
    for (const auto &[key, k] : table) {
        if (cfg == key) {
            kind = k;
            found = true;
        }
    }
    if (!found)
        ldis_fatal("unknown --config '%s'", cfg.c_str());

    L2Instance l2 = makeConfig(kind, workload.valueProfile());
    RunResult r = runTrace(workload, *l2.cache,
                           replay_instructions);
    std::printf("trace      %s (%llu records, wrapped %llu times)\n",
                workload.name().c_str(),
                static_cast<unsigned long long>(workload.size()),
                static_cast<unsigned long long>(workload.wraps()));
    std::printf("config     %s\n", l2.cache->describe().c_str());
    std::printf("MPKI       %.3f\n", r.mpki);
    std::printf("hits       %llu (LOC %llu, WOC %llu)\n",
                static_cast<unsigned long long>(r.l2.hits()),
                static_cast<unsigned long long>(r.l2.locHits),
                static_cast<unsigned long long>(r.l2.wocHits));
    std::printf("misses     %llu (hole %llu)\n",
                static_cast<unsigned long long>(r.l2.misses()),
                static_cast<unsigned long long>(r.l2.holeMisses));
    return 0;
}
