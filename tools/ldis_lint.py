#!/usr/bin/env python3
"""ldis-lint: project-invariant lint pass for the distillsim tree.

Enforces structural invariants that clang-tidy has no checks for,
complementing the Clang thread-safety wall (compile-time lock
discipline) and the LDIS_AUDIT engine (runtime state invariants):

  raw-mutex       No raw std::mutex / std::condition_variable /
                  std::lock_guard / std::unique_lock / ... outside
                  src/common/thread_annotations.hh. Every lock must
                  be an annotated ldis::Mutex so the thread-safety
                  analysis sees the whole locking surface.
  hot-path-alloc  No direct heap allocation (new/malloc/make_shared/
                  push_back/resize/...) inside the configured
                  steady-state hot functions (the gang-replay chunk
                  walk, the cache access paths). Deep reachability
                  is the alloc-counting test's job
                  (tests/test_alloc_free.cc); this rule keeps the
                  named functions themselves allocation-free at the
                  source level, where a stray emplace_back survives
                  review far too easily.
  nondeterminism  No std::rand / srand / random_device /
                  system_clock / time() / gettimeofday outside the
                  allowlisted files (src/common/random.hh owns
                  seeding; telemetry timestamps records). The
                  simulator's bit-identical replay guarantees depend
                  on this.
  audit-const     Every auditInvariants() is const-qualified and its
                  body contains no const_cast (the compiler then
                  proves audits cannot mutate model state, which is
                  what keeps audited runs bit-identical).
  audit-hook      Every translation unit with an LDIS_AUDIT_POINT
                  site declares auditInvariants() itself or in its
                  paired header — an audit point on a model with no
                  audit hook is dead armor.

Driving file set: the translation units of compile_commands.json
(written by CMake, CMAKE_EXPORT_COMPILE_COMMANDS ON) filtered to the
configured scope, plus every header under the scope directories.
Token stream: libclang when the python bindings are importable (the
CI job installs them), otherwise a built-in lexer that strips
comments and string/char literals — both produce the same
comment-free text the rules scan, so findings are identical on any
well-formed source.

Usage:
  tools/ldis_lint.py -p build                 # lint the real tree
  tools/ldis_lint.py --self-test              # run the fixture suite
  tools/ldis_lint.py -p build --rules FILE    # alternate rule config

Exit status: 0 clean, 1 findings (or fixture expectations missed),
2 usage/environment error.
"""

import argparse
import json
import os
import re
import sys

DEFAULT_RULES = "scripts/ldis_lint_rules.json"
FIXTURE_DIR = "tests/lint_fixtures"

# --------------------------------------------------------------------
# Tokenization: comment/string stripping
# --------------------------------------------------------------------


def strip_code_builtin(text):
    """Blank comments and string/char literal contents, preserving
    newlines and column positions so findings carry real line
    numbers. Handles //, /* */, "..." with escapes, '...', and
    R"delim(...)delim" raw strings."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            seg = text[i:j + 2]
            out.append("".join(ch if ch == "\n" else " "
                               for ch in seg))
            i = j + 2
        elif c == "R" and nxt == '"' and (
                i == 0 or not (text[i - 1].isalnum()
                               or text[i - 1] == "_")):
            m = re.match(r'R"([^\s()\\]{0,16})\(', text[i:])
            if not m:
                out.append(c)
                i += 1
                continue
            close = ")" + m.group(1) + '"'
            j = text.find(close, i + m.end())
            j = n - len(close) if j < 0 else j
            seg = text[i:j + len(close)]
            out.append('""' + "".join(
                ch if ch == "\n" else " " for ch in seg[2:]))
            i = j + len(close)
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j, n - 1)
            out.append(quote + " " * max(0, j - i - 1) + quote)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def strip_code_libclang(path, text):
    """Rebuild the comment/literal-free text from a libclang token
    stream. Identical output contract to strip_code_builtin; used
    when the clang.cindex bindings are importable."""
    import clang.cindex as ci

    tu = ci.Index.create().parse(
        path, args=["-std=c++20"],
        options=ci.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD)
    blanked = list(text)
    for tok in tu.get_tokens(extent=tu.cursor.extent):
        if tok.kind is ci.TokenKind.COMMENT or (
                tok.kind is ci.TokenKind.LITERAL
                and tok.spelling[:1] in "\"'RL"
                and ("\"" in tok.spelling or "'" in tok.spelling)):
            start = tok.extent.start.offset
            end = tok.extent.end.offset
            for k in range(start, min(end, len(blanked))):
                if blanked[k] != "\n":
                    blanked[k] = " "
    return "".join(blanked)


def have_libclang():
    try:
        import clang.cindex  # noqa: F401

        return True
    except Exception:
        return False


def strip_code(path, text, use_libclang):
    if use_libclang:
        try:
            return strip_code_libclang(path, text)
        except Exception:
            pass  # fall back: a parse failure must not hide findings
    return strip_code_builtin(text)


# --------------------------------------------------------------------
# Function-body extraction (for hot-path-alloc / audit-const)
# --------------------------------------------------------------------


def match_forward(text, start, open_ch, close_ch):
    """Index just past the balanced close_ch matching text[start]."""
    depth = 0
    for i in range(start, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def find_function_bodies(stripped, name):
    """Yield (body_start, body_end) spans for definitions of @p name
    in comment-free text. Recognizes both ordinary definitions
    (``ret Klass::name(args) ... {``) and named lambdas
    (``auto name = [...](args) ... {``)."""
    for m in re.finditer(r"\b%s\b" % re.escape(name), stripped):
        i = m.end()
        while i < len(stripped) and stripped[i].isspace():
            i += 1
        if i >= len(stripped):
            continue
        if stripped[i] == "(":
            after_args = match_forward(stripped, i, "(", ")")
            tail = stripped[after_args:after_args + 160]
            # A definition: only qualifiers/specifiers before '{'.
            tm = re.match(
                r"\s*(const|noexcept|override|final|mutable"
                r"|->\s*[\w:<>,&*\s]+|LDIS_\w+\s*\([^)]*\)"
                r"|LDIS_\w+)*\s*\{", tail)
            if not tm:
                continue
            body_start = after_args + tm.end() - 1
            yield body_start, match_forward(
                stripped, body_start, "{", "}")
        elif stripped[i] == "=":
            j = i + 1
            while j < len(stripped) and stripped[j].isspace():
                j += 1
            if j >= len(stripped) or stripped[j] != "[":
                continue
            after_cap = match_forward(stripped, j, "[", "]")
            k = after_cap
            while k < len(stripped) and stripped[k].isspace():
                k += 1
            if k < len(stripped) and stripped[k] == "(":
                k = match_forward(stripped, k, "(", ")")
            brace = stripped.find("{", k)
            if brace < 0:
                continue
            yield brace, match_forward(stripped, brace, "{", "}")


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


# --------------------------------------------------------------------
# Findings
# --------------------------------------------------------------------


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (
            self.path, self.line, self.rule, self.message)


# --------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------

RAW_MUTEX_RE = re.compile(
    r"\bstd\s*::\s*(recursive_|timed_|recursive_timed_|shared_)?"
    r"(mutex|condition_variable(_any)?|lock_guard|unique_lock"
    r"|scoped_lock|shared_lock)\b")

ALLOC_RES = [
    (re.compile(r"\bnew\b(?!\s*\()"), "operator new"),
    (re.compile(r"\bnew\s*\("), "placement/operator new"),
    (re.compile(r"\b(malloc|calloc|realloc|strdup)\s*\("),
     "C allocation"),
    (re.compile(r"\bmake_(unique|shared)\b"), "make_unique/shared"),
    (re.compile(r"\.\s*(push_back|emplace_back|emplace|resize"
                r"|reserve|insert|assign)\s*\("),
     "allocating container call"),
    (re.compile(r"\bstd\s*::\s*(string|vector|deque|map|set"
                r"|unordered_map|unordered_set|list)\s*<?[^;]*?\("),
     "allocating container construction"),
]

NONDET_RES = [
    (re.compile(r"\bstd\s*::\s*rand\b|(?<![\w.>])rand\s*\("),
     "rand()"),
    (re.compile(r"(?<![\w.>])srand\s*\("), "srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bsystem_clock\b"), "wall-clock time"),
    (re.compile(r"(?<![\w.>])time\s*\("), "time()"),
    (re.compile(r"(?<![\w.>])gettimeofday\s*\("), "gettimeofday()"),
]


def rule_raw_mutex(path, stripped, cfg, findings):
    for m in RAW_MUTEX_RE.finditer(stripped):
        findings.append(Finding(
            "raw-mutex", path, line_of(stripped, m.start()),
            "raw %s; use the annotated ldis::%s from "
            "src/common/thread_annotations.hh" % (
                m.group(0),
                "Mutex/ScopedLock" if "lock" in m.group(0)
                or "mutex" in m.group(0) else "CondVar")))


def blank_audit_macros(stripped):
    """Blank the arguments of LDIS_AUDIT_POINT/CHECK sites: they are
    compiled out of Release builds, so whatever they allocate is not
    steady-state hot-path allocation."""
    out = list(stripped)
    for m in re.finditer(r"\bLDIS_AUDIT_(POINT|CHECK)\s*\(",
                         stripped):
        end = match_forward(stripped, m.end() - 1, "(", ")")
        for k in range(m.end(), end - 1):
            if out[k] != "\n":
                out[k] = " "
    return "".join(out)


def rule_hot_path_alloc(path, stripped, cfg, findings):
    functions = cfg.get("functions", {}).get(path, [])
    if not functions:
        return
    stripped = blank_audit_macros(stripped)
    for fn in functions:
        spans = list(find_function_bodies(stripped, fn))
        if not spans:
            findings.append(Finding(
                "hot-path-alloc", path, 1,
                "configured hot function '%s' not found (stale "
                "scripts/ldis_lint_rules.json entry?)" % fn))
            continue
        for start, end in spans:
            body = stripped[start:end]
            for rx, what in ALLOC_RES:
                for m in rx.finditer(body):
                    findings.append(Finding(
                        "hot-path-alloc", path,
                        line_of(stripped, start + m.start()),
                        "%s in steady-state hot function '%s'"
                        % (what, fn)))


def rule_nondeterminism(path, stripped, cfg, findings):
    for rx, what in NONDET_RES:
        for m in rx.finditer(stripped):
            findings.append(Finding(
                "nondeterminism", path,
                line_of(stripped, m.start()),
                "%s outside the nondeterminism allowlist (replays "
                "must be bit-identical; seed via common/random.hh)"
                % what))


def rule_audit_const(path, stripped, cfg, findings):
    for m in re.finditer(r"\bauditInvariants\s*\(", stripped):
        after = match_forward(stripped, m.end() - 1, "(", ")")
        tail = stripped[after:after + 40]
        line = line_of(stripped, m.start())
        # Skip call sites: member calls (obj.auditInvariants(),
        # p->auditInvariants()) and unqualified self-calls in the
        # legacy predicate wrappers (return auditInvariants()...).
        before = stripped[:m.start()].rstrip()
        if (before.endswith(".") or before.endswith("->")
                or before.endswith("return")
                or before.endswith("!")):
            continue
        if not re.match(r"\s*const\b", tail):
            findings.append(Finding(
                "audit-const", path, line,
                "auditInvariants() must be const-qualified so the "
                "compiler proves audits cannot mutate model state"))
        bm = re.search(r"\s*const[^;{]*\{", stripped[after:])
        if bm and bm.start() == 0:
            body_start = after + bm.end() - 1
            body_end = match_forward(stripped, body_start, "{", "}")
            body = stripped[body_start:body_end]
            for bad in ("const_cast", "mutable"):
                bmatch = re.search(r"\b%s\b" % bad, body)
                if bmatch:
                    findings.append(Finding(
                        "audit-const", path,
                        line_of(stripped,
                                body_start + bmatch.start()),
                        "%s inside auditInvariants() defeats the "
                        "read-only audit contract" % bad))


def rule_audit_hook(path, stripped, cfg, findings, sibling_text=""):
    if not path.endswith(".cc"):
        return
    m = re.search(r"\bLDIS_AUDIT_POINT\s*\(", stripped)
    if not m:
        return
    if re.search(r"\bauditInvariants\b", stripped):
        return
    if re.search(r"\bauditInvariants\b", sibling_text):
        return
    findings.append(Finding(
        "audit-hook", path, line_of(stripped, m.start()),
        "LDIS_AUDIT_POINT site but neither this TU nor its paired "
        "header declares auditInvariants(); the audit macro would "
        "not compile against a hook-less model, or audits a model "
        "defined elsewhere — move the point next to the hook"))


RULES = {
    "raw-mutex": rule_raw_mutex,
    "hot-path-alloc": rule_hot_path_alloc,
    "nondeterminism": rule_nondeterminism,
    "audit-const": rule_audit_const,
    "audit-hook": rule_audit_hook,
}


# --------------------------------------------------------------------
# File discovery
# --------------------------------------------------------------------


def load_compile_commands(build_dir):
    ccpath = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(ccpath):
        raise SystemExit(
            "error: %s not found — configure with CMake first "
            "(CMAKE_EXPORT_COMPILE_COMMANDS is ON at the top level)"
            % ccpath)
    with open(ccpath) as f:
        entries = json.load(f)
    return sorted({os.path.abspath(
        os.path.join(e["directory"], e["file"])) for e in entries})


def scoped_files(root, scope_dirs, build_dir):
    """TUs from compile_commands.json filtered to the scope, plus
    every header found under the scope directories."""
    root = os.path.abspath(root)
    files = []
    for tu in load_compile_commands(build_dir):
        rel = os.path.relpath(tu, root)
        if any(rel == d or rel.startswith(d + os.sep)
               for d in scope_dirs):
            files.append(rel)
    for d in scope_dirs:
        for dirpath, _, names in os.walk(os.path.join(root, d)):
            for name in sorted(names):
                if name.endswith((".hh", ".h", ".hpp")):
                    files.append(os.path.relpath(
                        os.path.join(dirpath, name), root))
    return sorted(set(files))


def sibling_header_text(root, rel):
    stem = os.path.splitext(rel)[0]
    for ext in (".hh", ".h", ".hpp"):
        cand = os.path.join(root, stem + ext)
        if os.path.isfile(cand):
            with open(cand) as f:
                return f.read()
    return ""


# --------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------


def suppressed_lines(text):
    """Map line number -> set of rules silenced by an inline
    `// ldis-lint: allow(<rule>)` comment on that line or the line
    above. Suppressions are for invariants the rule cannot see
    (e.g. a push_back into a scratch vector whose capacity is
    reserved once) — justify each one in the comment."""
    allowed = {}
    for i, line in enumerate(text.splitlines(), start=1):
        for m in re.finditer(
                r"ldis-lint:\s*allow\(([\w-]+)\)", line):
            for ln in (i, i + 1):
                allowed.setdefault(ln, set()).add(m.group(1))
    return allowed


def lint_files(root, files, rules_cfg, use_libclang):
    findings = []
    enabled = rules_cfg.get("rules", {})
    for rel in files:
        with open(os.path.join(root, rel)) as f:
            text = f.read()
        stripped = strip_code(
            os.path.join(root, rel), text, use_libclang)
        allowed = suppressed_lines(text)
        file_findings = []
        for rule_name, rule_fn in RULES.items():
            cfg = enabled.get(rule_name)
            if cfg is None:
                continue
            if rel in cfg.get("allow_files", []):
                continue
            if rule_name == "audit-hook":
                rule_fn(rel, stripped, cfg, file_findings,
                        sibling_header_text(root, rel))
            else:
                rule_fn(rel, stripped, cfg, file_findings)
        findings.extend(
            f for f in file_findings
            if f.rule not in allowed.get(f.line, ()))
    return findings


def run_self_test(root, use_libclang):
    """Every bad_*.cc fixture must produce exactly its expected
    findings (declared inline as `// expect-finding: <rule>`), and
    every good_*.cc must produce none."""
    fixdir = os.path.join(root, FIXTURE_DIR)
    rules_path = os.path.join(fixdir, "rules.json")
    with open(rules_path) as f:
        rules_cfg = json.load(f)
    failures = []
    checked = 0
    for name in sorted(os.listdir(fixdir)):
        if not name.endswith(".cc"):
            continue
        checked += 1
        rel = os.path.join(FIXTURE_DIR, name)
        with open(os.path.join(root, rel)) as f:
            text = f.read()
        expected = re.findall(r"//\s*expect-finding:\s*([\w-]+)",
                              text)
        got = lint_files(root, [rel], rules_cfg, use_libclang)
        got_rules = sorted(f.rule for f in got)
        if name.startswith("good_"):
            if got:
                failures.append("%s: expected clean, got:\n  %s" % (
                    name, "\n  ".join(str(f) for f in got)))
            continue
        missing = [r for r in expected
                   if r not in [g.rule for g in got]]
        unexpected = [g for g in got if g.rule not in expected]
        if not expected:
            failures.append(
                "%s: bad fixture declares no expect-finding lines"
                % name)
        if missing:
            failures.append("%s: rule(s) %s did not fire (got %s)"
                            % (name, missing, got_rules))
        if unexpected:
            failures.append("%s: unexpected finding(s):\n  %s" % (
                name, "\n  ".join(str(f) for f in unexpected)))
    mode = "libclang" if use_libclang else "builtin lexer"
    if failures:
        print("ldis-lint self-test FAILED (%s, %d fixtures):"
              % (mode, checked))
        for f in failures:
            print("  " + f)
        return 1
    print("ldis-lint self-test OK (%s): %d fixtures behaved"
          % (mode, checked))
    return 0


def main(argv):
    ap = argparse.ArgumentParser(
        prog="ldis_lint.py",
        description="distillsim project-invariant lint pass")
    ap.add_argument("-p", "--build-dir", default="build",
                    help="dir containing compile_commands.json")
    ap.add_argument("--rules", default=DEFAULT_RULES,
                    help="rule config (default %s)" % DEFAULT_RULES)
    ap.add_argument("--root", default=None,
                    help="repo root (default: the script's parent)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the bad-snippet fixture suite")
    ap.add_argument("--no-libclang", action="store_true",
                    help="force the builtin lexer")
    args = ap.parse_args(argv)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    use_libclang = (not args.no_libclang) and have_libclang()

    if args.self_test:
        return run_self_test(root, use_libclang)

    with open(os.path.join(root, args.rules)) as f:
        rules_cfg = json.load(f)
    files = scoped_files(root, rules_cfg.get("scope", ["src"]),
                         args.build_dir)
    if not files:
        print("error: no files in scope — wrong --build-dir?",
              file=sys.stderr)
        return 2
    findings = lint_files(root, files, rules_cfg, use_libclang)
    mode = "libclang" if use_libclang else "builtin lexer"
    for f in findings:
        print(f)
    print("ldis-lint (%s): %d file(s), %d finding(s)"
          % (mode, len(files), len(findings)))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
